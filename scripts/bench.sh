#!/bin/sh
# Benchmark harness + regression gate.
#
# Runs every benchmark (the experiment sweeps report trials/s as a
# custom metric; the substrate packages report ns/op + allocs/op),
# converts the output into a structured baseline via cmd/benchjson,
# writes it to BENCH_PR9.json, and compares against the most recently
# committed BENCH_*.json: a sweep whose trials/s throughput dropped
# more than 10% fails the script.
#
# Usage: scripts/bench.sh              (or: make bench-compare)
#   BENCH_OUT=BENCH_PR10.json scripts/bench.sh  # name a new baseline
#
# The JSON schema and the gate policy are documented in EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_PR9.json}
raw=$(mktemp)
trap 'rm -f "$raw" "$raw.base"' EXIT

echo "==> go test -bench (this takes a minute or two)"
go test -bench=. -benchmem -run '^$' -timeout 60m . ./internal/... | tee "$raw"

echo "==> parse to $out"
go run ./cmd/benchjson -o "$out" < "$raw"

# The baseline is the HEAD version of the most recently committed
# BENCH_*.json (which may be an older copy of $out itself).
base=$(git ls-files 'BENCH_*.json' | while read -r f; do
	printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
done | sort -n | tail -1 | cut -d' ' -f2-)

if [ -z "$base" ]; then
	echo "no committed BENCH_*.json baseline; skipping regression gate"
	exit 0
fi

if ! git show "HEAD:$base" > "$raw.base" 2>/dev/null; then
	echo "cannot read HEAD:$base; skipping regression gate"
	exit 0
fi

echo "==> compare against committed $base"
go run ./cmd/benchjson -compare -threshold 0.10 "$raw.base" "$out"
