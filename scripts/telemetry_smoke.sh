#!/bin/sh
# Live-telemetry smoke: the wall-vs-deterministic boundary, end to end.
#
# Builds h2attack with the race detector, runs a telemetry-off survey
# as the reference, then the same survey with -status on a random port
# at -j 1 and -j 8, scraping /metrics and /status mid-run. Asserts the
# scrapes are well-formed (Prometheus exposition lines, parseable
# status fields) and that the campaign's stdout and JSONL export are
# byte-identical to the reference — the plane may observe, never
# perturb. Mirrors the CI telemetry-smoke job; scratch in campaigns/
# (gitignored).
#
# Usage: scripts/telemetry_smoke.sh [scratch-dir]
set -eu

cd "$(dirname "$0")/.."
DIR=${1:-campaigns/telemetrysmoke}
rm -rf "$DIR"
mkdir -p "$DIR"

bin="$DIR/h2attack"
go build -race -o "$bin" ./cmd/h2attack

# Reference: telemetry off. 200 sites x 2 trials is long enough under
# the race detector that the live runs are reliably still going when
# the scrapes land.
"$bin" -survey -corpus 200 -site-trials 2 \
	-export summary,jsonl="$DIR/ref.jsonl" >"$DIR/ref.out"

for j in 1 8; do
	: >"$DIR/err.$j"
	"$bin" -survey -corpus 200 -site-trials 2 -j "$j" -status 127.0.0.1:0 \
		-export summary,jsonl="$DIR/live.$j.jsonl" \
		>"$DIR/live.$j.out" 2>"$DIR/err.$j" &
	pid=$!

	# The server binds before the campaign starts and prints its
	# random port on stderr; wait for the line and extract the address.
	addr=""
	tries=0
	while [ -z "$addr" ]; do
		addr=$(sed -n 's|.*status server on http://\([0-9.:]*\).*|\1|p' "$DIR/err.$j")
		if [ -z "$addr" ]; then
			tries=$((tries + 1))
			if [ "$tries" -gt 100 ]; then
				echo "telemetry_smoke: -j $j: no status server line after 10s" >&2
				kill "$pid" 2>/dev/null || true
				exit 1
			fi
			sleep 0.1
		fi
	done

	# Scrape mid-run. Poll until the campaign has completed at least
	# one trial AND the export writer has flushed bytes, so the
	# assertions below see live values, not startup zeros (the first
	# exported trial sits briefly in the async queue before the writer
	# advances the byte gauge).
	tries=0
	while :; do
		curl -fsS "http://$addr/status" >"$DIR/status.$j.json"
		curl -fsS "http://$addr/metrics" >"$DIR/metrics.$j.txt"
		if ! grep -q '"trials_done": 0,' "$DIR/status.$j.json" &&
			grep -q '^h2attack_pipeline_export_bytes [1-9]' "$DIR/metrics.$j.txt"; then
			break
		fi
		tries=$((tries + 1))
		if [ "$tries" -gt 100 ]; then
			echo "telemetry_smoke: -j $j: no live export progress after 10s" >&2
			kill "$pid" 2>/dev/null || true
			exit 1
		fi
		sleep 0.1
	done

	wait "$pid"

	# Prometheus exposition well-formedness: schema triples present,
	# live values nonzero where the mid-run scrape guarantees them.
	grep -q '^# HELP h2attack_runner_workers ' "$DIR/metrics.$j.txt"
	grep -q '^# TYPE h2attack_runner_workers gauge$' "$DIR/metrics.$j.txt"
	grep -q "^h2attack_runner_workers $j\$" "$DIR/metrics.$j.txt"
	grep -q '^h2attack_pipeline_export_bytes [1-9]' "$DIR/metrics.$j.txt"
	grep -q '^h2attack_trials_total 400$' "$DIR/metrics.$j.txt"
	grep -q '^h2attack_trials_per_sec [0-9]' "$DIR/metrics.$j.txt"

	# /status well-formedness: campaign identity and live progress.
	grep -q '"campaign": "survey"' "$DIR/status.$j.json"
	grep -q '"fingerprint": "corpus{' "$DIR/status.$j.json"
	grep -q '"trials_total": 400,' "$DIR/status.$j.json"
	grep -q '"trials_per_sec": ' "$DIR/status.$j.json"
	grep -q '"runner_workers": '"$j"',' "$DIR/status.$j.json"

	# The boundary: output with the plane live is byte-identical to
	# the telemetry-off reference.
	cmp "$DIR/ref.out" "$DIR/live.$j.out"
	cmp "$DIR/ref.jsonl" "$DIR/live.$j.jsonl"
done

echo "telemetry-smoke OK"
