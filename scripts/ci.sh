#!/bin/sh
# CI gate for the repository: vet, build everything, then run the full
# test suite under the race detector. The -race pass is load-bearing,
# not ceremony — the experiment sweeps run trials across a worker pool
# (internal/runner), and TestSweepsIdenticalAcrossWorkerCounts only
# proves trial isolation if the detector watches it happen.
#
# Usage: scripts/ci.sh            (or: make ci)
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "CI OK"
