#!/bin/sh
# CI gate for the repository: vet, build everything, then run the full
# test suite under the race detector. The -race pass is load-bearing,
# not ceremony — the experiment sweeps run trials across a worker pool
# (internal/runner), and TestSweepsIdenticalAcrossWorkerCounts only
# proves trial isolation if the detector watches it happen.
#
# Usage: scripts/ci.sh            (or: make ci)
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Known-vulnerability scan. Gate policy (documented in README's CI
# section): findings fail the gate on pull requests (CI_EVENT=
# pull_request, exported by the workflow) so a vulnerable path can't
# merge unreviewed, but only report on pushes — the vulndb updates
# independently of the tree, and a new advisory must not turn an
# unrelated push red. Skipped silently when the tool isn't installed
# (offline/local runs): the scan needs network for the vulndb anyway.
if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck ./..."
  if ! govulncheck ./...; then
    if [ "${CI_EVENT:-}" = "pull_request" ]; then
      echo "govulncheck: findings are fatal on pull requests" >&2
      exit 1
    fi
    echo "govulncheck: findings reported (non-fatal outside pull requests)" >&2
  fi
else
  echo "==> govulncheck not installed; skipping (CI installs it pinned)"
fi

echo "CI OK"
