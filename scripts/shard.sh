#!/bin/sh
# Multi-process sharded campaign driver.
#
# Builds h2attack once, launches N shard processes (each running the
# contiguous slice i/N of every selected campaign into its own bundle
# directory), waits for all of them, then merges the bundles. The
# merged output — tables on stdout, survey JSONL/obs exports,
# -metrics-json — is byte-identical to the same flags run in a single
# process (see DESIGN.md "Scale-out").
#
# Usage: scripts/shard.sh N DIR [h2attack flags...]
#
#   scripts/shard.sh 4 campaigns/run1 -all -trials 100 -seed 1
#   scripts/shard.sh 8 campaigns/big -survey -corpus 100000 \
#       -export summary,jsonl=campaigns/big/results.jsonl
#
# An interrupted shard leaves its per-campaign checkpoints in its
# bundle directory; rerun the same command and every shard resumes
# where it stopped (completed shards short-circuit on their done
# checkpoints).
set -eu

if [ "$#" -lt 3 ]; then
	echo "usage: scripts/shard.sh N DIR [h2attack flags...]" >&2
	exit 2
fi

N=$1
DIR=$2
shift 2

cd "$(dirname "$0")/.."
mkdir -p "$DIR"
bin="$DIR/h2attack"
go build -o "$bin" ./cmd/h2attack

# Shard status lines go to stderr so this script's stdout carries
# only the merged output — `scripts/shard.sh ... > out` is then
# byte-comparable to the same flags run in a single process. Each
# shard's lines (stdout and stderr both) are prefixed "[shard i/N]"
# so the N interleaved progress streams stay attributable. POSIX sh
# has no pipefail, so each shard records its exit status in a file
# the wait loop checks after the prefixer pipeline drains.
pids=""
dirs=""
i=1
while [ "$i" -le "$N" ]; do
	{
		"$bin" "$@" -shard "$i/$N" -shard-dir "$DIR/shard-$i" 2>&1
		echo $? >"$DIR/shard-$i.status"
	} | sed "s|^|[shard $i/$N] |" >&2 &
	pids="$pids $!"
	dirs="$dirs,$DIR/shard-$i"
	i=$((i + 1))
done

for p in $pids; do
	wait "$p" || true
done

fail=0
ok=0
i=1
while [ "$i" -le "$N" ]; do
	st=$(cat "$DIR/shard-$i.status" 2>/dev/null || echo missing)
	if [ "$st" = "0" ]; then
		ok=$((ok + 1))
	else
		echo "shard.sh: shard $i/$N failed (exit status: $st)" >&2
		fail=1
	fi
	rm -f "$DIR/shard-$i.status"
	i=$((i + 1))
done
echo "shard.sh: $ok/$N shards complete" >&2
if [ "$fail" -ne 0 ]; then
	echo "shard.sh: a shard process failed; fix or rerun to resume" >&2
	exit 1
fi

exec "$bin" "$@" -merge "${dirs#,}"
