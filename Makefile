# Convenience targets; everything is plain go tooling underneath.

.PHONY: ci test bench bench-compare bench-profile check-golden experiments profile survey-smoke shard-smoke telemetry-smoke

# The CI gate: vet + build + race-enabled tests (scripts/ci.sh).
ci:
	sh scripts/ci.sh

# The fast tier-1 check.
test:
	go build ./... && go test ./...

# Experiment sweeps as custom bench metrics + substrate micro-benches.
bench:
	go test -bench=. -benchmem

# Run all benchmarks, write BENCH_PR9.json, and fail on a >10%
# trials/s regression against the last committed BENCH_*.json
# (scripts/bench.sh; schema in EXPERIMENTS.md).
bench-compare:
	sh scripts/bench.sh

# Regenerate the profile inputs (profiles/ is gitignored; this
# refreshes them locally) so the next perf PR starts from profiles of
# the current code rather than a stale snapshot. Alias of
# `make profile` with an explicit reminder of the workload.
bench-profile: profile

# Profile a representative sweep (Table II: full-attack trials, the
# dominant workload). Writes profiles/cpu.pprof + profiles/mem.pprof;
# inspect with `go tool pprof profiles/cpu.pprof`. See EXPERIMENTS.md
# "Profiling".
profile:
	@mkdir -p profiles
	go run ./cmd/h2attack -table2 -trials 100 -seed 1 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof > /dev/null
	@echo "wrote profiles/cpu.pprof and profiles/mem.pprof"

# Determinism gate: regenerate the sweep output and diff it against
# the committed golden file. Any byte of drift fails.
check-golden:
	@tmp=$$(mktemp) && \
	go run ./cmd/h2attack -all -trials 100 -seed 1 > $$tmp && \
	diff -u experiments_output.txt $$tmp && \
	rm -f $$tmp && echo "golden OK"

# Pipeline smoke: a small survey campaign through the JSONL exporter
# with a mid-campaign stop and a checkpointed resume, verifying the
# resumed output is byte-identical to an uninterrupted run. The
# reference run pins the inline writer (-export-queue -1) while the
# kill/resume legs pin the pipelined export stage, so the final cmp
# also proves the async writer produces the inline path's exact bytes
# across a mid-campaign kill. Mirrors the CI pipeline-smoke step;
# campaign scratch lives in campaigns/ (gitignored).
survey-smoke:
	@rm -rf campaigns/smoke && mkdir -p campaigns/smoke
	go run ./cmd/h2attack -survey -corpus 40 -export-queue -1 \
		-export jsonl=campaigns/smoke/ref.jsonl > /dev/null
	go run ./cmd/h2attack -survey -corpus 40 -export-queue 64 -export-buf 4096 \
		-export summary,jsonl=campaigns/smoke/out.jsonl \
		-checkpoint campaigns/smoke/ck.json -checkpoint-every 7 -max-trials 17 > /dev/null
	go run ./cmd/h2attack -survey -corpus 40 -export-queue 64 -export-buf 4096 \
		-export summary,jsonl=campaigns/smoke/out.jsonl \
		-checkpoint campaigns/smoke/ck.json -checkpoint-every 7
	cmp campaigns/smoke/ref.jsonl campaigns/smoke/out.jsonl && echo "survey-smoke OK"

# Scale-out smoke: the same campaign (two sweeps + a small survey)
# run single-process and as three shard processes via scripts/shard.sh
# must produce byte-identical tables, survey JSONL, and -metrics-json.
# Deliberately uses different -j for the two runs: output must not
# depend on worker count either. Mirrors the CI shard-merge-smoke job;
# scratch lives in campaigns/ (gitignored).
shard-smoke:
	@rm -rf campaigns/shardsmoke && mkdir -p campaigns/shardsmoke
	go run ./cmd/h2attack -table1 -delay -trials 6 -seed 5 -j 3 \
		-metrics-json campaigns/shardsmoke/single.metrics.json \
		-survey -corpus 24 -site-trials 2 \
		-export summary,jsonl=campaigns/shardsmoke/single.jsonl \
		> campaigns/shardsmoke/single.out
	sh scripts/shard.sh 3 campaigns/shardsmoke/bundles \
		-table1 -delay -trials 6 -seed 5 -j 2 \
		-metrics-json campaigns/shardsmoke/merged.metrics.json \
		-survey -corpus 24 -site-trials 2 \
		-export summary,jsonl=campaigns/shardsmoke/merged.jsonl \
		> campaigns/shardsmoke/merged.out
	cmp campaigns/shardsmoke/single.out campaigns/shardsmoke/merged.out
	cmp campaigns/shardsmoke/single.jsonl campaigns/shardsmoke/merged.jsonl
	cmp campaigns/shardsmoke/single.metrics.json campaigns/shardsmoke/merged.metrics.json
	@echo "shard-smoke OK"

# Live-telemetry smoke: a race-built survey with -status on a random
# port, /metrics and /status scraped mid-run and checked for
# well-formed live values, then the campaign stdout + JSONL
# byte-compared against a telemetry-off reference at -j 1 and -j 8
# (scripts/telemetry_smoke.sh). Mirrors the CI telemetry-smoke job.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Regenerate the reference run recorded in experiments_output.txt
# (deterministic: identical at any -j; see EXPERIMENTS.md). Written to
# a temp file first so a failed run cannot truncate the golden file.
experiments:
	go run ./cmd/h2attack -all -trials 100 -seed 1 -progress > experiments_output.txt.tmp
	mv experiments_output.txt.tmp experiments_output.txt
