# Convenience targets; everything is plain go tooling underneath.

.PHONY: ci test bench experiments

# The CI gate: vet + build + race-enabled tests (scripts/ci.sh).
ci:
	sh scripts/ci.sh

# The fast tier-1 check.
test:
	go build ./... && go test ./...

# Experiment sweeps as custom bench metrics + substrate micro-benches.
bench:
	go test -bench=. -benchmem

# Regenerate the reference run recorded in experiments_output.txt
# (deterministic: identical at any -j; see EXPERIMENTS.md).
experiments:
	go run ./cmd/h2attack -all -trials 100 -seed 1 -progress > experiments_output.txt
